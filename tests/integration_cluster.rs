//! Cluster acceptance: a routed mount answers byte-identically to a
//! direct single-hub mount of the same dataset, and killing one node of
//! a replicated 3-node fleet mid-run costs concurrent clients ZERO
//! visible failures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use deeplake::cluster::Cluster;
use deeplake::prelude::*;
use deeplake::storage::DynProvider;
use deeplake::tql;

const ROWS: u64 = 500;

/// Build a committed dataset with prunable labels (`i / 25`) into
/// `provider`, returning the commit id.
fn build_dataset(provider: DynProvider, name: &str) -> String {
    let mut ds = Dataset::create(provider, name).unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256);
        o
    })
    .unwrap();
    for i in 0..ROWS {
        ds.append_row(vec![("labels", Sample::scalar((i / 25) as i32))])
            .unwrap();
    }
    ds.flush().unwrap();
    ds.commit("cluster acceptance dataset").unwrap()
}

/// Every read path through the routed mount — offloaded query,
/// client-side query over routed chunk reads, raw key reads, row
/// decodes — must be byte-identical to a direct single-hub mount of the
/// same seed bytes.
#[test]
fn routed_mount_is_byte_identical_to_a_direct_single_hub_mount() {
    let seed: DynProvider = Arc::new(MemoryProvider::new());
    let commit = build_dataset(seed.clone(), "acceptance");

    // ground truth: the same bytes behind ONE hub, reached directly
    let hub = Hub::builder()
        .mount("acceptance", seed.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    let direct = Arc::new(RemoteProvider::connect(hub.addr()).unwrap());
    direct.attach("acceptance").unwrap();

    // the same bytes replicated over a 3-node fleet, reached by routing
    let cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("acceptance", seed.clone())
        .build()
        .unwrap();
    let routed = Arc::new(cluster.client().unwrap().open("acceptance").unwrap());

    // 1. offloaded queries (head and version-pinned) agree
    for text in [
        "SELECT labels FROM d WHERE labels = 7".to_string(),
        format!("SELECT labels FROM d AT VERSION \"{commit}\" WHERE labels = 3"),
    ] {
        let want = direct.query(&text, &QueryOptions::default()).unwrap();
        let got = routed.query(&text, &QueryOptions::default()).unwrap();
        assert_eq!(got.indices, want.indices, "{text}");
        assert_eq!(got.rows, want.rows, "{text}");
        assert_eq!(got.version, want.version, "{text}");
    }

    // 2. client-side TQL over routed chunk reads agrees with direct
    let ds_direct = Dataset::open(direct.clone() as DynProvider).unwrap();
    let ds_routed = Dataset::open(routed.clone() as DynProvider).unwrap();
    assert_eq!(ds_routed.len(), ds_direct.len());
    let want = tql::query(&ds_direct, "SELECT labels FROM d WHERE labels = 11").unwrap();
    let got = tql::query(&ds_routed, "SELECT labels FROM d WHERE labels = 11").unwrap();
    assert_eq!(got.indices, want.indices);

    // 3. raw storage reads and listings are byte-identical
    let mut keys = seed.list("").unwrap();
    keys.sort();
    let mut routed_keys = routed.list("").unwrap();
    routed_keys.sort();
    assert_eq!(routed_keys, keys);
    for key in &keys {
        assert_eq!(
            routed.get(key).unwrap(),
            direct.get(key).unwrap(),
            "byte mismatch on {key}"
        );
    }

    // 4. row decodes agree
    for row in [0u64, 123, 499] {
        assert_eq!(
            ds_routed.get("labels", row).unwrap().get_f64(0).unwrap(),
            ds_direct.get("labels", row).unwrap().get_f64(0).unwrap(),
        );
    }
}

/// Six concurrent clients hammer a replicated dataset while one of its
/// replica-bearing nodes is killed mid-run: every query must still
/// return the correct rows — zero client-visible failures.
#[test]
fn killing_one_node_of_three_loses_no_client_requests() {
    const CLIENTS: usize = 6;
    const QUERIES: usize = 20;

    let seed: DynProvider = Arc::new(MemoryProvider::new());
    build_dataset(seed.clone(), "survivor");
    let mut cluster = Cluster::builder()
        .nodes(3)
        .replication(2)
        .dataset_from("survivor", seed)
        .build()
        .unwrap();
    let client = cluster.client().unwrap();
    let mounts: Vec<_> = (0..CLIENTS)
        .map(|_| Arc::new(client.open("survivor").unwrap()))
        .collect();

    let issued = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for (c, mount) in mounts.iter().enumerate() {
            let issued = &issued;
            scope.spawn(move || {
                for q in 0..QUERIES {
                    let k = (c + q) % 20;
                    let result = mount
                        .query(
                            &format!("SELECT labels FROM d WHERE labels = {k}"),
                            &QueryOptions::default(),
                        )
                        .unwrap_or_else(|e| panic!("client {c} query {q} failed: {e}"));
                    assert_eq!(result.indices.len(), 25, "client {c} wrong rows for {k}");
                    issued.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // kill a replica holder once traffic is demonstrably in flight
        let victim = cluster.replica_nodes("survivor")[0];
        while issued.load(Ordering::Relaxed) < (CLIENTS * QUERIES / 4) as u64 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(cluster.kill(victim));
    });
    assert_eq!(issued.load(Ordering::Relaxed), (CLIENTS * QUERIES) as u64);

    // the survivors still answer fresh placements after the death
    let late = cluster.client().unwrap().open("survivor").unwrap();
    let r = late
        .query(
            "SELECT labels FROM d WHERE labels = 0",
            &QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(r.indices.len(), 25);
}
