//! Predicate pushdown over simulated S3: a selective `WHERE labels = k`
//! query must skip most label chunks (statistics pruning) and reach the
//! provider in far fewer round trips than the naive full scan — measured
//! with the provider-side `StorageStats` from the batched-I/O layer.

use std::sync::Arc;

use deeplake::prelude::*;
use deeplake_tql::{execute, parser, QueryOptions};

const ROWS: u64 = 400;

/// Rows with labels in sorted order (0..=9, 40 rows each) so label chunks
/// are homogeneous, plus an image payload. Tiny label chunks ensure the
/// query spans many of them.
fn seed(provider: DynProvider) {
    let mut ds = Dataset::create(provider, "pushdown").unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(64);
        o
    })
    .unwrap();
    ds.create_tensor_opts("images", {
        let mut o = TensorOptions::new(Htype::Image);
        o.sample_compression = Some(Compression::None);
        o.chunk_target_bytes = Some(8 << 10);
        o
    })
    .unwrap();
    for i in 0..ROWS {
        ds.append_row(vec![
            ("labels", Sample::scalar((i * 10 / ROWS) as i32)),
            (
                "images",
                Sample::from_slice([8, 8, 3], &[(i % 251) as u8; 192]).unwrap(),
            ),
        ])
        .unwrap();
    }
    ds.flush().unwrap();
}

#[test]
fn selective_query_prunes_chunks_and_round_trips() {
    let backing = Arc::new(MemoryProvider::new());
    seed(backing.clone());
    let q = parser::parse("SELECT * FROM d WHERE labels = 3").unwrap();

    // ---- pruned execution over a fresh simulated-cloud handle ----
    let sim = Arc::new(SimulatedCloudProvider::new(
        "s3",
        backing.clone(),
        NetworkProfile::instant(),
    ));
    let ds = Dataset::open(sim.clone()).unwrap();
    sim.stats().reset();
    let pruned = execute(&ds, &q, &QueryOptions::default()).unwrap();
    let pruned_round_trips = sim.stats().round_trips();

    assert_eq!(pruned.len(), 40, "one of ten labels is selected");
    assert!(pruned.indices.iter().all(|&r| r / (ROWS / 10) == 3));

    let total_spans =
        pruned.stats.chunks_pruned + pruned.stats.chunks_matched + pruned.stats.chunks_scanned;
    assert!(
        total_spans > 10,
        "labels must span many chunks, got {total_spans}"
    );
    assert!(
        pruned.stats.chunks_pruned * 2 >= total_spans,
        "expected >= 50% of chunks pruned: pruned {} of {total_spans}",
        pruned.stats.chunks_pruned
    );
    assert!(
        pruned.stats.chunks_matched > 0,
        "homogeneous label-3 chunks should match whole without I/O"
    );
    // only undecided (boundary) spans may fetch
    assert!(
        pruned.stats.round_trips <= pruned.stats.chunks_scanned,
        "round trips ({}) must not exceed scanned spans ({})",
        pruned.stats.round_trips,
        pruned.stats.chunks_scanned
    );

    // ---- naive full scan over an equally fresh handle ----
    let sim_full = Arc::new(SimulatedCloudProvider::new(
        "s3",
        backing,
        NetworkProfile::instant(),
    ));
    let ds_full = Dataset::open(sim_full.clone()).unwrap();
    sim_full.stats().reset();
    let full = execute(
        &ds_full,
        &q,
        &QueryOptions {
            pruning: false,
            ..Default::default()
        },
    )
    .unwrap();
    let full_round_trips = sim_full.stats().round_trips();

    // identical results...
    assert_eq!(full.indices, pruned.indices);
    assert_eq!(full.stats.chunks_pruned, 0, "naive path never prunes");
    // ...at a fraction of the storage traffic
    assert!(
        pruned_round_trips * 2 <= full_round_trips,
        "pruned execution must at least halve storage round trips: {pruned_round_trips} vs {full_round_trips}"
    );
}

#[test]
fn undecided_spans_batch_into_few_round_trips() {
    // interleaved labels: every chunk holds both matching and
    // non-matching rows, so statistics decide nothing and every span
    // must scan — the batched task path has to shine here, not pruning
    let backing = Arc::new(MemoryProvider::new());
    {
        let mut ds = Dataset::create(backing.clone(), "interleaved").unwrap();
        ds.create_tensor_opts("labels", {
            let mut o = TensorOptions::new(Htype::ClassLabel);
            o.chunk_target_bytes = Some(64);
            o
        })
        .unwrap();
        for i in 0..ROWS {
            ds.append_row(vec![("labels", Sample::scalar((i % 10) as i32))])
                .unwrap();
        }
        ds.flush().unwrap();
    }
    let sim = Arc::new(SimulatedCloudProvider::new(
        "s3",
        backing,
        NetworkProfile::instant(),
    ));
    let ds = Dataset::open(sim.clone()).unwrap();
    sim.stats().reset();
    let r = deeplake_tql::query(&ds, "SELECT * FROM d WHERE labels = 3").unwrap();
    assert_eq!(r.len(), 40);
    // interleaving defeats pruning for every full-cycle chunk (only a
    // trailing partial chunk may still decide)
    assert!(r.stats.chunks_pruned <= 1);
    assert!(r.stats.chunks_scanned > 10, "almost every span scans");
    // undecided spans share one batched fetch per worker task
    assert!(
        sim.stats().round_trips() * 4 <= r.stats.chunks_scanned,
        "scanned spans must batch: {} round trips for {} spans",
        sim.stats().round_trips(),
        r.stats.chunks_scanned
    );
}

#[test]
fn unselective_query_still_matches_naive_traffic_shape() {
    let backing = Arc::new(MemoryProvider::new());
    seed(backing.clone());
    // every row matches: nothing can be pruned, everything decides whole
    let sim = Arc::new(SimulatedCloudProvider::new(
        "s3",
        backing,
        NetworkProfile::instant(),
    ));
    let ds = Dataset::open(sim.clone()).unwrap();
    sim.stats().reset();
    let r = deeplake_tql::query(&ds, "SELECT * FROM d WHERE labels >= 0").unwrap();
    assert_eq!(r.len(), ROWS as usize);
    assert_eq!(r.stats.chunks_pruned, 0);
    assert!(
        r.stats.chunks_matched > 0,
        "statistics prove whole chunks match without fetching them"
    );
    assert_eq!(
        sim.stats().round_trips(),
        0,
        "an all-match filter over scalar stats needs no chunk fetch at all"
    );
}
