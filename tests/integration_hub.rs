//! Multi-dataset hub acceptance: one hub serves several datasets to a
//! fleet of concurrent clients with results byte-identical to direct
//! mounts, and a repeated version-pinned query is answered from the
//! result cache with an order of magnitude fewer server-side storage
//! round trips than its first execution.

use std::sync::Arc;

use deeplake::hub::Hub;
use deeplake::prelude::*;
use deeplake::storage::DynProvider;
use deeplake::tql;

const ROWS: u64 = 2_000;

/// Metered sim-cloud storage so server-side round trips are countable.
fn metered() -> Arc<SimulatedCloudProvider<MemoryProvider>> {
    Arc::new(SimulatedCloudProvider::new(
        "s3",
        MemoryProvider::new(),
        NetworkProfile::instant(),
    ))
}

/// Build a dataset with prunable sorted labels (`offset + i / 50`) and
/// commit, so both head and pinned-version queries are exercised.
fn build_dataset(provider: DynProvider, name: &str, offset: i32) -> String {
    let mut ds = Dataset::create(provider, name).unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256);
        o
    })
    .unwrap();
    for i in 0..ROWS {
        ds.append_row(vec![("labels", Sample::scalar(offset + (i / 50) as i32))])
            .unwrap();
    }
    ds.flush().unwrap();
    ds.commit("hub acceptance dataset").unwrap()
}

/// One hub, two datasets, eight concurrent clients: every query and raw
/// read answers byte-identically to a direct (local) mount of the same
/// storage.
#[test]
fn hub_serves_two_datasets_to_eight_clients_byte_identically() {
    const CLIENTS: usize = 8;
    let storage_a = metered();
    let storage_b = metered();
    build_dataset(storage_a.clone(), "alpha", 0);
    build_dataset(storage_b.clone(), "beta", 10_000);
    let hub = Hub::builder()
        .mount("alpha", storage_a.clone())
        .mount("beta", storage_b.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = hub.addr();

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..CLIENTS {
            let storage: DynProvider = if c % 2 == 0 {
                storage_a.clone()
            } else {
                storage_b.clone()
            };
            joins.push(scope.spawn(move || {
                let (name, offset) = if c % 2 == 0 {
                    ("alpha", 0)
                } else {
                    ("beta", 10_000)
                };
                let remote = Arc::new(RemoteProvider::connect(addr).unwrap());
                remote.attach(name).unwrap();

                // ground truth from the direct mount
                let direct = Dataset::open(storage.clone()).unwrap();
                let text = format!(
                    "SELECT labels FROM d WHERE labels = {}",
                    offset + 7 + (c as i32 % 3)
                );
                let expected = tql::query(&direct, &text).unwrap();

                // 1. offloaded query through the hub
                let offloaded = remote.query(&text, &QueryOptions::default()).unwrap();
                assert_eq!(offloaded.indices, expected.indices, "client {c}");
                assert_eq!(
                    offloaded.rows.as_ref().unwrap().len(),
                    expected.indices.len()
                );

                // 2. client-side execution over hub-served chunks
                let ds = Dataset::open(remote.clone()).unwrap();
                assert_eq!(ds.len(), direct.len());
                let pulled = tql::query(&ds, &text).unwrap();
                assert_eq!(pulled.indices, expected.indices, "client {c}");

                // 3. raw storage reads are byte-identical
                for key in ["dataset.json", "version_control_info.json"] {
                    assert_eq!(
                        remote.get(key).unwrap(),
                        storage.get(key).unwrap(),
                        "client {c} byte mismatch on {key}"
                    );
                }
                // and a sample row decodes to the same value
                let row = 123 + c as u64 * 17;
                assert_eq!(
                    ds.get("labels", row).unwrap().get_f64(0).unwrap(),
                    direct.get("labels", row).unwrap().get_f64(0).unwrap(),
                );
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    });
    assert!(hub.stats().requests() > 0);
    assert_eq!(hub.datasets(), vec!["alpha", "beta"]);
}

/// The acceptance ratio: a repeated version-pinned query costs ≥ 10x
/// fewer server-side storage round trips than its first execution —
/// measured on the mounted provider's `StorageStats`, with the hub's
/// `ServerStats`-compatible counters confirming both queries were
/// served.
#[test]
fn repeated_query_is_10x_cheaper_in_storage_round_trips() {
    let storage = metered();
    let commit = build_dataset(storage.clone(), "pinned", 0);
    let hub = Hub::builder()
        .mount("pinned", storage.clone())
        .bind("127.0.0.1:0")
        .unwrap();
    let client = RemoteProvider::connect(hub.addr()).unwrap();
    client.attach("pinned").unwrap();

    // pin to the committed (immutable) version explicitly
    let text = format!("SELECT labels FROM d AT VERSION \"{commit}\" WHERE labels = 7");

    storage.stats().reset();
    let queries_before = hub.stats().queries();
    let first = client.query(&text, &QueryOptions::default()).unwrap();
    let first_rts = storage.stats().round_trips();
    assert_eq!(first.len(), 50);
    assert!(first_rts > 0, "first execution must touch storage");

    const REPEATS: u64 = 10;
    storage.stats().reset();
    for _ in 0..REPEATS {
        let again = client.query(&text, &QueryOptions::default()).unwrap();
        assert_eq!(again.indices, first.indices);
        assert_eq!(again.rows, first.rows);
        assert_eq!(again.version, first.version);
    }
    let repeat_rts = storage.stats().round_trips();
    assert_eq!(hub.stats().queries(), queries_before + 1 + REPEATS);
    assert!(
        first_rts >= 10 * repeat_rts.max(1) || repeat_rts == 0,
        "cache too weak: first execution {first_rts} storage round trips, \
         {REPEATS} repeats {repeat_rts}"
    );
    assert_eq!(
        repeat_rts, 0,
        "a version-pinned repeat must be a pure frame copy (zero storage round trips)"
    );
    assert_eq!(hub.cache().stats().cache_hits(), REPEATS);

    // the pinned entry survives writes to the dataset's head: the next
    // query pays one round trip to re-resolve the head the write may
    // have moved, then hits the cache — never a re-execution
    client
        .put("unrelated/key", bytes::Bytes::from_static(b"x"))
        .unwrap();
    storage.stats().reset();
    let after_write = client.query(&text, &QueryOptions::default()).unwrap();
    assert_eq!(after_write.indices, first.indices);
    let after_write_rts = storage.stats().round_trips();
    assert!(
        after_write_rts <= 1,
        "committed-version entries must survive head writes \
         (paid {after_write_rts} round trips, expected just the head re-resolution)"
    );
    assert!(after_write_rts * 10 < first_rts);
}
