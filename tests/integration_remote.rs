//! End-to-end serving-tier integration: everything that works against a
//! local provider must work — byte-identically — against the same
//! provider mounted in a dataset server, and query offload must be
//! demonstrably cheaper than client-side chunk pulls.

use std::sync::Arc;

use deeplake::prelude::*;
use deeplake::remote::RemoteProvider;
use deeplake::server::DatasetServer;
use deeplake::storage::DynProvider;
use deeplake::tql;

const ROWS: u64 = 10_000;
const DIM: usize = 8;
const NLIST: usize = 16;

/// Build the shared evaluation dataset on `provider`: sorted labels
/// (`i / 100` → 1%-selectivity equality predicates, prunable via chunk
/// stats) and clustered embeddings with an IVF index.
fn build_dataset(provider: DynProvider) {
    let mut ds = Dataset::create(provider, "remote_e2e").unwrap();
    ds.create_tensor_opts("labels", {
        let mut o = TensorOptions::new(Htype::ClassLabel);
        o.chunk_target_bytes = Some(256); // ~64 rows per chunk → many chunks
        o
    })
    .unwrap();
    ds.create_tensor_opts("emb", {
        let mut o = TensorOptions::new(Htype::Embedding);
        o.chunk_target_bytes = Some(2048);
        o
    })
    .unwrap();
    let mut v = [0.0f32; DIM];
    for i in 0..ROWS {
        let cluster = (i % NLIST as u64) as f32;
        v[0] = cluster * 25.0;
        v[1] = (i % 17) as f32 * 0.01;
        v[DIM - 1] = 1.0;
        ds.append_row(vec![
            ("labels", Sample::scalar((i / 100) as i32)),
            ("emb", Sample::from_slice([DIM as u64], &v).unwrap()),
        ])
        .unwrap();
    }
    ds.flush().unwrap();
    ds.build_vector_index(
        "emb",
        &IndexSpec {
            nlist: Some(NLIST),
            ..IndexSpec::default()
        },
    )
    .unwrap();
    ds.commit("evaluation dataset").unwrap();
}

fn ann_query_text() -> String {
    let mut q = [0.0f64; DIM];
    q[0] = 7.0 * 25.0; // dead-center of cluster 7
    q[DIM - 1] = 1.0;
    let parts: Vec<String> = q.iter().map(|x| format!("{x}")).collect();
    format!(
        "SELECT emb FROM remote_e2e ORDER BY L2_DISTANCE(emb, [{}]) LIMIT 10",
        parts.join(", ")
    )
}

/// TQL filter + vector top-k + loader streaming are byte-identical
/// whether the provider is mounted directly or served over loopback.
#[test]
fn remote_results_byte_identical_to_direct() {
    let mounted: DynProvider = Arc::new(MemoryProvider::new());
    build_dataset(mounted.clone());
    let server = DatasetServer::bind("127.0.0.1:0", mounted.clone()).unwrap();
    let remote: DynProvider = Arc::new(RemoteProvider::connect(server.addr()).unwrap());

    let direct = Dataset::open(mounted.clone()).unwrap();
    let served = Dataset::open(remote.clone()).unwrap();
    assert_eq!(direct.len(), served.len());

    // raw sample reads agree bit for bit
    for row in [0u64, 99, 5_000, ROWS - 1] {
        assert_eq!(
            direct.get("labels", row).unwrap(),
            served.get("labels", row).unwrap()
        );
        assert_eq!(
            direct.get("emb", row).unwrap(),
            served.get("emb", row).unwrap()
        );
    }

    // pruned 1%-selectivity filter
    let filter = "SELECT labels FROM remote_e2e WHERE labels = 7";
    let a = tql::query(&direct, filter).unwrap();
    let b = tql::query(&served, filter).unwrap();
    assert_eq!(a.indices, b.indices);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.len(), 100);
    assert!(b.stats.chunks_pruned > 0, "served queries still prune");

    // ANN top-k through the served vector index
    let opts = QueryOptions {
        ann: true,
        nprobe: 2,
        ..QueryOptions::default()
    };
    let a = tql::query_opts(&direct, &ann_query_text(), &opts).unwrap();
    let b = tql::query_opts(&served, &ann_query_text(), &opts).unwrap();
    assert_eq!(a.indices, b.indices);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.len(), 10);
    assert!(b.stats.clusters_probed > 0, "the index worked remotely");

    // loader streaming of a query view delivers identical rows in order
    let collect = |ds: Arc<Dataset>, indices: Vec<u64>| -> Vec<f64> {
        let view_ds = ds.clone();
        let loader = DataLoader::builder(view_ds)
            .indices(indices)
            .batch_size(16)
            .num_workers(2)
            .tensors(["labels"])
            .build()
            .unwrap();
        let mut out = Vec::new();
        for batch in loader.epoch() {
            let b = batch.unwrap();
            let col = b.column("labels").unwrap();
            for i in 0..col.len() {
                out.push(col.get(i).unwrap().get_f64(0).unwrap());
            }
        }
        out
    };
    let direct_rows = collect(Arc::new(direct), a.indices.clone());
    let served_rows = collect(Arc::new(served), a.indices.clone());
    assert_eq!(direct_rows, served_rows);
    assert_eq!(direct_rows.len(), 10);
}

/// Dataset mutation through the remote provider: append + commit on the
/// client is visible to a direct mount of the same storage, bit for bit.
#[test]
fn writes_through_remote_land_in_mounted_storage() {
    let mounted: DynProvider = Arc::new(MemoryProvider::new());
    let server = DatasetServer::bind("127.0.0.1:0", mounted.clone()).unwrap();
    let remote: DynProvider = Arc::new(RemoteProvider::connect(server.addr()).unwrap());

    let mut ds = Dataset::create(remote.clone(), "written_remotely").unwrap();
    ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
    for i in 0..10 {
        ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
    }
    let commit = ds.commit("ten rows, over the wire").unwrap();
    ds.append_row(vec![("labels", Sample::scalar(99i32))])
        .unwrap();
    ds.flush().unwrap();

    // a direct mount of the server's storage sees exactly that state
    let direct = Dataset::open(mounted).unwrap();
    assert_eq!(direct.len(), 11);
    assert_eq!(direct.get("labels", 10).unwrap().get_f64(0).unwrap(), 99.0);
    let log = direct.log().unwrap();
    assert_eq!(log[0].0, commit);
}

/// The headline acceptance: on the sim-latency transport, an offloaded
/// 1%-selectivity pruned query and an offloaded ANN top-k each cost ≥5x
/// fewer network round trips — and fewer wire bytes — than running the
/// same query client-side over chunk pulls.
#[test]
fn offload_beats_chunk_pulls_by_5x() {
    let mounted: DynProvider = Arc::new(MemoryProvider::new());
    build_dataset(mounted.clone());
    let server = DatasetServer::bind("127.0.0.1:0", mounted).unwrap();
    // the sim-latency transport: a deterministic per-round-trip charge
    // (scaled down so the test stays fast; ratios are what matter)
    let transport = deeplake::remote::RemoteOptions {
        latency: Some(NetworkProfile::s3().scaled(0.01)),
        ..deeplake::remote::RemoteOptions::default()
    };

    let pruned_text = "SELECT labels FROM remote_e2e WHERE labels = 7";
    let ann_text = ann_query_text();
    let ann_opts = QueryOptions {
        ann: true,
        nprobe: 2,
        ..QueryOptions::default()
    };

    for (tag, text, opts) in [
        ("pruned", pruned_text, QueryOptions::default()),
        ("ann-topk", ann_text.as_str(), ann_opts),
    ] {
        // chunk-pull path: a fresh client opens the dataset over the
        // wire and executes locally (stats pruning and the IVF index
        // still work — they just cost round trips)
        let pull = RemoteProvider::connect_with(server.addr(), transport).unwrap();
        let pull = Arc::new(pull);
        let ds = Dataset::open(pull.clone()).unwrap();
        let pull_result = tql::query_opts(&ds, text, &opts).unwrap();
        let pull_rts = pull.stats().round_trips();
        let pull_bytes = pull.stats().bytes_read() + pull.stats().bytes_written();

        // offload path: a fresh client ships the query text
        let off = RemoteProvider::connect_with(server.addr(), transport).unwrap();
        let off_result = off.query(text, &opts).unwrap();
        let off_rts = off.stats().round_trips();
        let off_bytes = off.stats().bytes_read() + off.stats().bytes_written();

        assert_eq!(off_result.indices, pull_result.indices, "{tag}");
        assert_eq!(off_result.rows, pull_result.rows, "{tag}");
        assert_eq!(off_rts, 1, "{tag}: offload is one round trip");
        assert!(
            pull_rts >= 5 * off_rts,
            "{tag}: chunk pulls cost {pull_rts} round trips, offload {off_rts} — need ≥5x"
        );
        assert!(
            pull_bytes > off_bytes,
            "{tag}: chunk pulls moved {pull_bytes} B, offload {off_bytes} B — offload must move less"
        );
    }
}

/// `AT VERSION` queries offload too: the result names the version its
/// indices refer to, and matches direct execution at that version.
#[test]
fn at_version_queries_offload() {
    let mounted: DynProvider = Arc::new(MemoryProvider::new());
    let server = DatasetServer::bind("127.0.0.1:0", mounted.clone()).unwrap();
    let remote = Arc::new(RemoteProvider::connect(server.addr()).unwrap());

    let mut ds = Dataset::create(remote.clone(), "versioned").unwrap();
    ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
    for i in 0..6 {
        ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
    }
    let sealed = ds.commit("six rows").unwrap();
    ds.update("labels", 0, &Sample::scalar(50i32)).unwrap();
    ds.flush().unwrap();

    let text = format!("SELECT labels FROM versioned AT VERSION \"{sealed}\" WHERE labels < 10");
    let offloaded = remote.query(&text, &QueryOptions::default()).unwrap();
    let direct = tql::query(&Dataset::open(mounted).unwrap(), &text).unwrap();
    assert_eq!(offloaded.indices, direct.indices);
    assert_eq!(offloaded.rows, direct.rows);
    assert_eq!(
        offloaded.len(),
        6,
        "the historical version still has row 0 < 10"
    );
    assert_eq!(offloaded.version.as_deref(), direct.version.as_deref());
    assert!(offloaded.version.is_some());
}
