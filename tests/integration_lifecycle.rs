//! Cross-crate integration: the full ML loop of Fig. 2 — ingest with the
//! parallel transform pipeline, version, query with TQL, stream with the
//! dataloader, materialize the query view, visualize.

use std::sync::Arc;

use deeplake::prelude::*;
use deeplake::tql;
use deeplake::viz;
use deeplake_core::transform::TransformPipeline;

fn ingest_dataset() -> Dataset {
    let mut ds = Dataset::create(Arc::new(MemoryProvider::new()), "lifecycle").unwrap();
    ds.create_tensor_opts("images", {
        let mut o = TensorOptions::new(Htype::Image);
        o.sample_compression = Some(Compression::JPEG_LIKE);
        o.chunk_target_bytes = Some(256 << 10);
        o
    })
    .unwrap();
    ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();

    // ETL-style ingestion from an arbitrary row iterator (§4.1)
    let rows = (0..120u64).map(|i| {
        let side = 16 + (i % 4) * 4;
        let n = (side * side * 3) as usize;
        Row::new()
            .with(
                "images",
                Sample::from_slice([side, side, 3], &vec![(i % 200) as u8; n]).unwrap(),
            )
            .with("labels", Sample::scalar((i % 6) as i32))
    });
    let stats = TransformPipeline::new().ingest(rows, &mut ds, 4).unwrap();
    assert_eq!(stats.rows_out, 120);
    ds.flush().unwrap();
    ds
}

#[test]
fn full_ml_loop() {
    let mut ds = ingest_dataset();
    let commit = ds.commit("ingested 120").unwrap();

    // --- query: balance the dataset down to label 0-2 ---
    let result = tql::query(&ds, "SELECT * FROM d WHERE labels < 3 ORDER BY labels").unwrap();
    assert_eq!(result.len(), 60);

    // --- stream the view, shuffled, through the loader ---
    let ds_arc = Arc::new(ds);
    let loader = DataLoader::builder(ds_arc.clone())
        .indices(result.indices.clone())
        .batch_size(16)
        .num_workers(4)
        .shuffle(99)
        .build()
        .unwrap();
    let mut label_counts = [0u32; 6];
    let mut rows_seen = 0;
    for batch in loader.epoch() {
        let batch = batch.unwrap();
        rows_seen += batch.len();
        let labels = batch.column("labels").unwrap();
        for i in 0..labels.len() {
            label_counts[labels.get(i).unwrap().get_f64(0).unwrap() as usize] += 1;
        }
    }
    assert_eq!(rows_seen, 60);
    assert_eq!(&label_counts[..3], &[20, 20, 20]);
    assert_eq!(&label_counts[3..], &[0, 0, 0]);
    drop(loader);
    let mut ds = Arc::try_unwrap(ds_arc).ok().expect("loader released");

    // --- materialize the balanced subset ---
    let view = DatasetView::new(&ds, result.indices.clone());
    let (dense, mstats) =
        materialize(&view, Arc::new(MemoryProvider::new()), "balanced", None).unwrap();
    assert_eq!(dense.len(), 60);
    assert_eq!(mstats.rows, 60);
    assert_eq!(DatasetView::full(&dense).sparseness(), 1.0);

    // --- time travel still works after everything ---
    ds.checkout(&commit).unwrap();
    assert_eq!(ds.len(), 120);
    assert!(ds.is_read_only());

    // --- visualize a frame of the materialized dataset ---
    let plan = viz::plan_layout(&dense);
    assert_eq!(plan.primaries(), vec!["images"]);
    let frame = viz::render_frame(&dense, &plan, 0).unwrap();
    assert!(frame.w >= 16 && frame.h >= 16);
}

#[test]
fn query_at_version_spans_history() {
    let mut ds = ingest_dataset();
    let v1 = ds.commit("v1").unwrap();
    // second wave of data, labels shifted
    for _ in 0..30 {
        ds.append_row(vec![("labels", Sample::scalar(5i32))])
            .unwrap();
    }
    ds.flush().unwrap();

    let now = tql::query(&ds, "SELECT * FROM d WHERE labels = 5").unwrap();
    let q = format!("SELECT * FROM d AT VERSION \"{v1}\" WHERE labels = 5");
    let then = tql::query(&ds, &q).unwrap();
    assert_eq!(now.len() as u64, 20 + 30); // 120/6 originally + 30 new
    assert_eq!(then.len(), 20);
    // the historical view streams through the loader too
    let hist = then.dataset.unwrap();
    let loader = DataLoader::builder(Arc::new(hist))
        .indices(then.indices.clone())
        .batch_size(8)
        .build()
        .unwrap();
    let n: usize = loader.epoch().map(|b| b.unwrap().len()).sum();
    assert_eq!(n, 20);
}

#[test]
fn transform_pipeline_feeds_new_dataset() {
    let src = ingest_dataset();
    let mut dest = Dataset::create(Arc::new(MemoryProvider::new()), "aug").unwrap();
    dest.create_tensor_opts("images", {
        let mut o = TensorOptions::new(Htype::Image);
        o.sample_compression = Some(Compression::None);
        o
    })
    .unwrap();
    dest.create_tensor("labels", Htype::ClassLabel, None)
        .unwrap();

    // augmentation: center-crop every image to 12x12 and duplicate rows
    let crop = |row: &Row, emit: &mut dyn FnMut(Row)| {
        let img = row.get("images").unwrap();
        let cropped = deeplake_tensor::ops::slice_sample(
            img,
            &[SliceSpec::range(2, 14), SliceSpec::range(2, 14)],
        )
        .unwrap();
        for _ in 0..2 {
            emit(
                Row::new()
                    .with("images", cropped.clone())
                    .with("labels", row.get("labels").unwrap().clone()),
            );
        }
        Ok(())
    };
    let stats = TransformPipeline::new()
        .then(crop)
        .apply(&src, &mut dest, 4)
        .unwrap();
    assert_eq!(stats.rows_in, 120);
    assert_eq!(stats.rows_out, 240);
    let meta = dest.tensor_meta("images").unwrap();
    assert_eq!(meta.max_shape.dims(), &[12, 12, 3]);
    assert!(meta.is_uniform());
}
