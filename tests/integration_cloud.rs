//! Cross-crate integration over simulated cloud storage: request
//! accounting, cache chaining, tiling, and linked-tensor materialization
//! across providers.

use std::sync::Arc;

use deeplake::prelude::*;
use deeplake_core::link::{make_link, single_provider_registry};

fn seed_dataset(provider: DynProvider, rows: u64) {
    let mut ds = Dataset::create(provider, "cloud").unwrap();
    ds.create_tensor_opts("images", {
        let mut o = TensorOptions::new(Htype::Image);
        o.sample_compression = Some(Compression::JPEG_LIKE);
        o.chunk_target_bytes = Some(64 << 10);
        o
    })
    .unwrap();
    ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
    for i in 0..rows {
        let img = Sample::from_slice([24, 24, 3], &vec![(i % 251) as u8; 1728]).unwrap();
        ds.append_row(vec![
            ("images", img),
            ("labels", Sample::scalar((i % 7) as i32)),
        ])
        .unwrap();
    }
    ds.flush().unwrap();
}

#[test]
fn chunked_reads_beat_per_sample_requests() {
    let backing = Arc::new(MemoryProvider::new());
    seed_dataset(backing.clone(), 100);
    let sim = Arc::new(SimulatedCloudProvider::new(
        "s3",
        backing,
        NetworkProfile::instant(),
    ));
    let ds = Arc::new(Dataset::open(sim.clone()).unwrap());
    sim.stats().reset();

    let loader = DataLoader::builder(ds)
        .batch_size(25)
        .num_workers(4)
        .build()
        .unwrap();
    let rows: usize = loader.epoch().map(|b| b.unwrap().len()).sum();
    assert_eq!(rows, 100);
    // 100 samples must arrive in far fewer storage round trips than
    // samples — chunked layout (§3.5) plus batched task reads. With the
    // batched default the loader goes through `execute`, so the numbers
    // to watch are round_trips/logical_reads, not single-key requests().
    // round_trips counts both single-key reads and amortized batches
    let round_trips = sim.stats().round_trips();
    assert!(
        round_trips > 0,
        "the epoch must have touched the provider at all"
    );
    assert!(
        round_trips < 50,
        "expected chunked, batched fetches, got {round_trips} round trips"
    );
    assert!(
        sim.stats().logical_reads() < 100,
        "chunked layout must need fewer chunk reads than samples"
    );
}

#[test]
fn lru_cache_eliminates_second_epoch_traffic() {
    let backing = Arc::new(MemoryProvider::new());
    seed_dataset(backing.clone(), 60);
    let sim = SimulatedCloudProvider::new("s3", backing, NetworkProfile::instant());
    let cached = Arc::new(LruCacheProvider::new(sim, 512 << 20));
    let ds = Arc::new(Dataset::open(cached.clone()).unwrap());

    let loader = DataLoader::builder(ds)
        .batch_size(16)
        .num_workers(2)
        .build()
        .unwrap();
    let first: usize = loader.epoch().map(|b| b.unwrap().len()).sum();
    let miss_after_first = cached.stats().cache_misses();
    let second: usize = loader.epoch().map(|b| b.unwrap().len()).sum();
    assert_eq!(first, 60);
    assert_eq!(second, 60);
    assert_eq!(
        cached.stats().cache_misses(),
        miss_after_first,
        "second epoch must be served from cache"
    );
}

#[test]
fn oversized_samples_tile_across_cloud_chunks() {
    let backing = Arc::new(MemoryProvider::new());
    let mut ds = Dataset::create(backing.clone(), "aerial").unwrap();
    ds.create_tensor_opts("scan", {
        let mut o = TensorOptions::new(Htype::Image);
        o.sample_compression = Some(Compression::None);
        o.chunk_target_bytes = Some(32 << 10); // 32 KB chunks, 64 KB cap
        o
    })
    .unwrap();
    // a 300x300x3 = 270 KB sample must tile
    let n = 300 * 300 * 3;
    let data: Vec<u8> = (0..n).map(|i| (i % 249) as u8).collect();
    let big = Sample::from_slice([300, 300, 3], &data).unwrap();
    ds.append_row(vec![("scan", big.clone())]).unwrap();
    ds.flush().unwrap();
    assert!(ds.store("scan").unwrap().is_tiled(0));

    // reopen through a provider that counts traffic and reassemble
    let sim = Arc::new(SimulatedCloudProvider::new(
        "s3",
        backing,
        NetworkProfile::instant(),
    ));
    let ds = Dataset::open(sim.clone()).unwrap();
    let back = ds.get("scan", 0).unwrap();
    assert_eq!(back, big);
    assert!(sim.stats().requests() > 3, "tiles fetched individually");
}

#[test]
fn linked_tensors_resolve_across_providers() {
    // two external providers, pointers mixed in one tensor (§4.5: "the
    // pointers within a single tensor can be connected to multiple storage
    // providers")
    let (mut registry, ext_a) = single_provider_registry("prov-a", MemoryProvider::new());
    let ext_b: DynProvider = Arc::new(MemoryProvider::new());
    registry.register("prov-b", ext_b.clone());
    for (store, key, fill) in [(&ext_a, "x.bin", 10u8), (&ext_b, "y.bin", 20u8)] {
        let pixels = vec![fill; 12 * 12 * 3];
        let blob = Compression::JPEG_LIKE
            .compress_image(&pixels, 12, 12, 3)
            .unwrap();
        store.put(key, bytes::Bytes::from(blob)).unwrap();
    }

    let mut ds = Dataset::create(Arc::new(MemoryProvider::new()), "multi").unwrap();
    let mut opts = TensorOptions::new(Htype::parse("link[image]").unwrap());
    opts.dtype = Some(Dtype::U8);
    ds.create_tensor_opts("images", opts).unwrap();
    ds.append_row(vec![("images", make_link("prov-a", "x.bin"))])
        .unwrap();
    ds.append_row(vec![("images", make_link("prov-b", "y.bin"))])
        .unwrap();
    ds.flush().unwrap();

    let view = DatasetView::full(&ds);
    let (out, stats) = materialize(
        &view,
        Arc::new(MemoryProvider::new()),
        "inlined",
        Some(&registry),
    )
    .unwrap();
    assert_eq!(stats.links_resolved, 2);
    assert_eq!(out.tensor_meta("images").unwrap().htype, Htype::Image);
    assert_eq!(out.get("images", 0).unwrap().shape().dims(), &[12, 12, 3]);
    assert_eq!(out.get("images", 1).unwrap().shape().dims(), &[12, 12, 3]);
}

#[test]
fn branches_persist_across_reopen_on_cloud() {
    let backing = Arc::new(MemoryProvider::new());
    {
        let mut ds = Dataset::create(backing.clone(), "persisted").unwrap();
        ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
        for i in 0..10 {
            ds.append_row(vec![("labels", Sample::scalar(i))]).unwrap();
        }
        ds.commit("base").unwrap();
        ds.checkout_new_branch("exp").unwrap();
        ds.update("labels", 0, &Sample::scalar(-5i32)).unwrap();
        ds.commit("exp edit").unwrap();
    }
    // reopen through a fresh simulated-cloud handle
    let sim: DynProvider = Arc::new(SimulatedCloudProvider::new(
        "s3",
        backing,
        NetworkProfile::instant(),
    ));
    let mut ds = Dataset::open(sim).unwrap();
    assert_eq!(ds.get("labels", 0).unwrap().get_f64(0).unwrap(), 0.0);
    ds.checkout("exp").unwrap();
    assert_eq!(ds.get("labels", 0).unwrap().get_f64(0).unwrap(), -5.0);
    assert_eq!(ds.branches().len(), 2);
}
