//! Back-compat migration: datasets written before the `vector_index/`
//! key family existed — no index files, no tombstones — must open
//! cleanly, and `ann: true` queries silently fall back to the exact
//! flat path with identical results.

use std::sync::Arc;

use deeplake::prelude::*;
use deeplake_tql::{execute, parser};

/// Build a dataset with the current writer, then strip every trace of
/// the vector index key family from storage, exactly as a pre-index
/// writer would have left it.
fn legacy_dataset() -> DynProvider {
    let provider: DynProvider = Arc::new(MemoryProvider::new());
    {
        let mut ds = Dataset::create(provider.clone(), "legacy").unwrap();
        ds.create_tensor_opts("emb", {
            let mut o = TensorOptions::new(Htype::Embedding);
            o.chunk_target_bytes = Some(256);
            o
        })
        .unwrap();
        ds.create_tensor("labels", Htype::ClassLabel, None).unwrap();
        for i in 0..120u64 {
            let v = [(i / 40) as f32 * 10.0, (i % 9) as f32 * 0.1, 1.0];
            ds.append_row(vec![
                ("emb", Sample::from_slice([3], &v).unwrap()),
                ("labels", Sample::scalar((i % 4) as i32)),
            ])
            .unwrap();
        }
        // exercise the writer's index machinery, then erase its output:
        // the fixture must look like the key family never existed
        ds.build_vector_index("emb", &IndexSpec::default()).unwrap();
        ds.flush().unwrap();
    }
    for key in provider.list("").unwrap() {
        if key.contains("/vector_index/") {
            provider.delete(&key).unwrap();
        }
    }
    assert!(
        provider
            .list("")
            .unwrap()
            .iter()
            .all(|k| !k.contains("vector_index")),
        "fixture must hold no index keys"
    );
    provider
}

#[test]
fn pre_index_dataset_opens_and_ann_falls_back_to_flat() {
    let provider = legacy_dataset();
    let ds = Dataset::open(provider).unwrap();
    assert_eq!(ds.len(), 120);
    assert!(
        ds.vector_index("emb").is_none(),
        "no key family, no index to resolve"
    );

    let text = "SELECT * FROM d ORDER BY L2_DISTANCE(emb, [20, 0, 1]) LIMIT 8";
    let q = parser::parse(text).unwrap();
    let ann = execute(
        &ds,
        &q,
        &QueryOptions {
            ann: true,
            ..Default::default()
        },
    )
    .unwrap();
    let exact = execute(&ds, &q, &QueryOptions::default()).unwrap();
    assert_eq!(ann.indices, exact.indices, "silent flat fallback");
    assert_eq!(ann.stats.clusters_probed, 0);
    assert_eq!(ann.stats.candidates_reranked, 120, "every row re-ranked");
    assert!(ann.indices.iter().all(|&r| (80..120).contains(&r)));
}

#[test]
fn legacy_dataset_updates_and_queries_still_work() {
    let provider = legacy_dataset();
    let mut ds = Dataset::open(provider.clone()).unwrap();
    // updates on an index-less tensor must not fail or write tombstones
    ds.update(
        "emb",
        5,
        &Sample::from_slice([3], &[99.0f32, 0.0, 1.0]).unwrap(),
    )
    .unwrap();
    ds.flush().unwrap();
    assert!(
        provider
            .list("")
            .unwrap()
            .iter()
            .all(|k| !k.contains("vector_index")),
        "no index anywhere: invalidation must not create keys"
    );
    let r = deeplake_tql::query(
        &ds,
        "SELECT * FROM d ORDER BY L2_DISTANCE(emb, [99, 0, 1]) LIMIT 1",
    )
    .unwrap();
    assert_eq!(r.indices, vec![5]);
}
